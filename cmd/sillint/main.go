// Command sillint is the repo's custom static-analysis suite: a
// multichecker over the lintkit analyzers that enforce the invariants the
// dynamic suites only sample — Space discipline (no process-global Space
// fallbacks in library code), determinism (no wall-clock/randomness or
// map-iteration-order leaks in the bit-identical packages, even through
// callees), interned equality (== for interned nodes, Equal for content
// types), lock scope (no callouts under a sync lock in the serving layer,
// directly or transitively), context flow (no detached contexts or
// dropped/unthreadable ctx before blocking), and fingerprint purity (no
// wall-clock, env, addresses, or work-cap knobs in Mix-family sinks).
//
// All loaded packages form one Program: per-function facts are computed
// bottom-up over the static call graph, so the interprocedural analyzers
// see through helpers in other packages.
//
// Usage:
//
//	go run ./cmd/sillint ./...
//
// Exits 1 when any analyzer reports a finding, 2 on load errors. Findings
// can be suppressed case by case with a trailing
// "//sillint:allow <analyzer> <reason>" comment on the offending line.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint/ctxflow"
	"repro/internal/lint/determinism"
	"repro/internal/lint/fppurity"
	"repro/internal/lint/internedeq"
	"repro/internal/lint/lintkit"
	"repro/internal/lint/lockscope"
	"repro/internal/lint/spacediscipline"
)

var analyzers = []*lintkit.Analyzer{
	spacediscipline.Analyzer,
	determinism.Analyzer,
	internedeq.Analyzer,
	lockscope.Analyzer,
	ctxflow.Analyzer,
	fppurity.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sillint [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lintkit.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sillint:", err)
		os.Exit(2)
	}
	// One Program over everything loaded: cross-package facts flow from
	// callees to callers no matter which package each lives in.
	diags, err := lintkit.NewProgram(pkgs).Run(analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sillint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sillint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
