// Command silserver is the analysis-as-a-service daemon: an HTTP/JSON
// front end over internal/service, serving the Hendren–Nicolau analysis
// with pooled sessions (each owning a private path.Space), a
// fingerprint-keyed result cache, batched parallel analysis, and optional
// fingerprint sharding.
//
// Usage:
//
//	silserver [-addr :8080] [-cache 256] [-summary-cap 4096] [-sessions 0]
//	          [-shards 1] [-ctx 0] [-reset-paths 1048576] [-workers 0]
//	          [-timeout 60s] [-max-queue 256] [-budget-rounds 0]
//	          [-budget-paths 0] [-grace 30s]
//
// Endpoints (also reachable without the /v1 prefix):
//
//	POST /v1/analyze  {"source":"program p ...","roots":["root"]}
//	POST /v1/analyze  {"programs":[{"name":"a","source":"..."}, ...]}
//	GET  /v1/stats    (?shard=N for one shard's snapshot when -shards > 1)
//	GET  /v1/metrics  Prometheus text exposition
//	GET  /v1/healthz
//
// With -shards N the canonical program fingerprint is consistent-hashed
// across N independent shards, each with its own session pool, Spaces,
// and result cache; responses are byte-identical whatever N is. A cached
// response is byte-identical to the fresh one; the X-Sil-Cache header
// reports "hit" or "miss" per program. Failures use the v1 error envelope
// {"error":{"code":...,"message":...,"diagnostics":[...]}}: parse/type
// errors are 400 parse_error, admission sheds 429 overloaded (+
// Retry-After), exceeded work budgets 503 budget_exceeded, expired
// deadlines 504 deadline_exceeded. Deadlines, budgets, and admission
// never change a successful response's bytes.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 256, "result-cache capacity (entries; negative disables)")
	summaryCap := flag.Int("summary-cap", 0, "per-procedure summary-store capacity (records; 0 = default 4096, negative disables)")
	sessions := flag.Int("sessions", 0, "session pool size / worker budget (0 = default)")
	workers := flag.Int("workers", 0, "per-analysis worker pool size (0 = default; does not affect results)")
	ctx := flag.Int("ctx", 0, "context-table cap: 0 = default, >0 = override, <0 = merged mode")
	resetPaths := flag.Int("reset-paths", 1<<20, "per-session interned-path budget before an epoch reset (negative disables)")
	shards := flag.Int("shards", 1, "fingerprint shards; each shard has its own session pool and result cache")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline (0 disables); expired requests return 504")
	maxQueue := flag.Int("max-queue", 0, "admission-queue bound beyond the session pool: 0 = default 256, negative = no queue; excess requests are shed with 429")
	budgetRounds := flag.Int("budget-rounds", 0, "per-analysis fixpoint round budget (0 = unlimited); exceeding returns 503")
	grace := flag.Duration("grace", 30*time.Second, "graceful-drain window after SIGTERM/SIGINT before in-flight requests are abandoned")
	budgetPaths := flag.Int("budget-paths", 0, "per-analysis interned-path growth budget (0 = unlimited); exceeding returns 503")
	flag.Parse()

	router := service.NewRouter(*shards, service.Options{
		Analysis: analysis.Options{
			Workers:     *workers,
			MaxContexts: *ctx,
			Budgets:     analysis.Budgets{MaxRounds: *budgetRounds, MaxInternedPaths: *budgetPaths},
		},
		CacheCapacity:      *cache,
		SummaryCapacity:    *summaryCap,
		Sessions:           *sessions,
		ResetInternedPaths: *resetPaths,
		MaxQueue:           *maxQueue,
		RequestTimeout:     *timeout,
	})
	gate := service.NewDrainGate(service.NewRouterHandler(router))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           gate,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("silserver listening on %s (shards=%d cache=%d summary-cap=%d sessions=%d ctx=%d reset-paths=%d timeout=%s max-queue=%d budget-rounds=%d budget-paths=%d)",
		*addr, *shards, *cache, *summaryCap, *sessions, *ctx, *resetPaths, *timeout, *maxQueue, *budgetRounds, *budgetPaths)

	// Graceful drain: on SIGTERM/SIGINT the gate starts refusing analyze
	// requests (503 + Retry-After; healthz/stats/metrics stay up), the
	// server finishes in-flight requests within the grace window, and the
	// final metric state is flushed to the log before exit.
	idle := make(chan struct{})
	go func() {
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
		sig := <-sigs
		log.Printf("silserver: %s received, draining (grace %s)", sig, *grace)
		gate.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("silserver: shutdown: %v", err)
		}
		close(idle)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-idle
	log.Printf("silserver: drained (%d request(s) refused); final metrics:", gate.Refused())
	var final strings.Builder
	router.WriteMetrics(&final)
	log.Print(final.String())
}
