// Command silexp regenerates every experiment of the reproduction: one
// section per figure of Hendren & Nicolau (1989) plus the quantitative
// speedup and ablation studies the paper only gestures at. Its output is
// the source of EXPERIMENTS.md.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/interfere"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/path"
	"repro/internal/progs"
	"repro/internal/runtime"
	"repro/internal/sil/ast"
	"repro/internal/sil/parser"
)

func section(id, title string) {
	fmt.Printf("\n== %s — %s ==\n", id, title)
}

func main() {
	log.SetFlags(0)
	fig2()
	fig3()
	fig4()
	fig56()
	fig78()
	fig910()
	bitonic()
	speedups()
	ablations()
}

// dummyInfo provides an analyzed context whose main declares the handles
// the figure replays need.
func dummyInfo() *analysis.Info {
	pipe, err := core.Build(`
program figctx
procedure main()
  a, b, c, d, e, x, y: handle
begin
  a := new()
end;
`, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	return pipe.Info
}

func nonNil() matrix.Attr { return matrix.Attr{Nil: matrix.NonNil, Indeg: matrix.UnknownDeg} }

func stmts(src string) []ast.Stmt {
	out, err := parser.ParseStmts(src)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

// fig2 replays the handle-assignment example.
func fig2() {
	section("E-F2", "Figure 2: handle assignments")
	info := dummyInfo()
	m := matrix.New()
	for _, h := range []matrix.Handle{"a", "b", "c"} {
		m.Add(h, nonNil())
	}
	m.Put("a", "b", path.MustParseSet("L4+")) // the paper's L^1L+L^2, coalesced
	m.Put("a", "c", path.MustParseSet("R1D+"))
	fmt.Println("(a) initial matrix:")
	fmt.Println(m)
	_, m1 := info.Replay("main", m, stmts("d := a.right"))
	fmt.Println("\n(b) after d := a.right   [paper: a→d = R1, d→c = D+]:")
	fmt.Println(m1)
	_, m2 := info.Replay("main", m1, stmts("e := d.left"))
	fmt.Println("\n(c) after e := d.left    [paper: e→c = S?, D+?]:")
	fmt.Println(m2)
}

// fig3 shows the while-loop iteration's fixpoint.
func fig3() {
	section("E-F3", "Figure 3: iterative approximation for a while loop")
	pipe, err := core.Build(`
program fig3
procedure main()
  h, l: handle
begin
  h := new();
  l := h;
  while l.left <> nil do
    l := l.left
end;
`, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	var w *ast.While
	for _, s := range pipe.Prog.Proc("main").Body.Stmts {
		if ws, ok := s.(*ast.While); ok {
			w = ws
		}
	}
	fmt.Println("matrix after the loop (paper's p+ = L+, plus the p0 alternative S?):")
	fmt.Println(pipe.Info.After[w])
}

// fig4 demonstrates the n-statement fusion width.
func fig4() {
	section("E-F4", "Figure 4: transforming sequential statements to a parallel statement")
	info := dummyInfo()
	m := matrix.New()
	for _, h := range []matrix.Handle{"a", "b", "c", "d"} {
		m.Add(h, nonNil())
	}
	_ = info
	group := stmts("a.value := 1; b.value := 2; c.value := 3; d.value := 4")
	fmt.Printf("4 independent updates fuse: %v\n", interfere.NoInterferenceN(group, m))
	m2 := m.Copy()
	m2.Put("a", "b", path.MustParseSet("S?"))
	m2.Put("b", "a", path.MustParseSet("S?"))
	fmt.Printf("with a,b possibly aliased they do not: %v\n", !interfere.NoInterferenceN(group, m2))
}

// fig56 prints the read/write sets and interference sets of Figure 6.
func fig56() {
	section("E-F5/E-F6", "Figures 5–6: read/write sets and interference examples")
	m := matrix.New()
	for _, h := range []matrix.Handle{"a", "b", "c", "d"} {
		m.Add(h, nonNil())
	}
	m.Put("a", "b", path.MustParseSet("S"))
	m.Put("b", "a", path.MustParseSet("S"))
	m.Put("a", "d", path.MustParseSet("D+"))
	m.Put("b", "d", path.MustParseSet("D+"))
	m.Put("c", "d", path.MustParseSet("S?, R+?"))
	m.Put("d", "c", path.MustParseSet("S?"))
	show := func(label, s1, s2 string) {
		a, b := stmts(s1)[0], stmts(s2)[0]
		r1, w1, _ := interfere.ReadWrite(a, m)
		r2, w2, _ := interfere.ReadWrite(b, m)
		i, _ := interfere.Interference(a, b, m)
		fmt.Printf("%s\n  s1: %-22s R=%s W=%s\n  s2: %-22s R=%s W=%s\n  I(s1,s2)=%s\n",
			label, s1, r1, w1, s2, r2, w2, i)
	}
	show("Example 1 [paper: {(x,var)}]", "x := a.left", "y := x")
	show("Example 2 [paper: {(a,left),(b,left)}]", "x := a.left", "b.left := nil")
	show("Example 3 [paper: {(c,value),(d,value)}]", "n := d.value", "c.value := 0")
}

// fig78 runs the full pipeline on the paper's example program.
func fig78() {
	section("E-F7/E-F8", "Figures 7–8: add_and_reverse — matrices pA, pB and the parallel program")
	pipe, err := core.Build(progs.AddAndReverse, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	find := func(proc, callee string, n int) ast.Stmt {
		var out ast.Stmt
		count := 0
		var walk func(s ast.Stmt)
		walk = func(s ast.Stmt) {
			switch s := s.(type) {
			case *ast.Block:
				for _, st := range s.Stmts {
					walk(st)
				}
			case *ast.If:
				walk(s.Then)
				if s.Else != nil {
					walk(s.Else)
				}
			case *ast.While:
				walk(s.Body)
			case *ast.CallStmt:
				if s.Name == callee {
					if count == n {
						out = s
					}
					count++
				}
			}
		}
		walk(pipe.Prog.Proc(proc).Body)
		return out
	}
	fmt.Println("pA (before add_n(lside,1)) [paper: root→lside=L1, root→rside=R1, lside/rside unrelated]:")
	fmt.Println(pipe.MatrixBefore(find("main", "add_n", 0)))
	fmt.Println("\npB (before the recursive add_n(l,n)) [paper: h*,h** groups; l,r unrelated]:")
	fmt.Println(pipe.MatrixBefore(find("add_n", "add_n", 0)))
	fmt.Println("\nparallelized program [paper: Figure 8]:")
	fmt.Println(pipe.ParallelText())
	rep, err := pipe.Verify(interp.Config{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification: equivalent=%v races=%d\n", rep.Equivalent(), len(rep.Races))
}

// fig910 demonstrates the sequence analysis.
func fig910() {
	section("E-F9/E-F10", "Figures 9–10: statement-sequence interference")
	pipe, err := core.Build(progs.AddAndReverse, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	var firstCall ast.Stmt
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ast.CallStmt:
			if s.Name == "add_n" && firstCall == nil {
				firstCall = s
			}
		}
	}
	walk(pipe.Prog.Proc("main").Body)
	p0 := pipe.Info.Before[firstCall]
	U := stmts("lside.value := 1; lside.left := nil")
	V := stmts("rside.value := 2")
	conf, err := interfere.SequencesInterfere(pipe.Info, "main", p0, U, V, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("U touches lside's subtree, V touches rside's: interfere=%v (want false)\n", conf)
	V2 := stmts("rside := lside.left")
	conf2, err := interfere.SequencesInterfere(pipe.Info, "main", p0, U, V2, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("V2 reads lside.left which U writes: interfere=%v (want true)\n", conf2)
}

// bitonic is the §6 case study.
func bitonic() {
	section("E-S6", "§6 case study: adaptive-bitonic-style tree merge")
	bopts := core.DefaultOptions()
	bopts.Analysis.ExternalRoots = []string{"root"}
	pipe, err := core.Build(progs.BitonicMerge, bopts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pipe.Report())
	rep, err := pipe.Verify(interp.Config{}, progs.BitonicTreeSetup(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification at depth 10: equivalent=%v races=%d\n", rep.Equivalent(), len(rep.Races))
	sp, err := pipe.Speedup(interp.Config{}, progs.BitonicTreeSetup(12), []int{1, 2, 4, 8, 16, 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speedup at depth 12:\n%s", sp.String())
}

// speedups is E-SP1: the processor/depth sweeps.
func speedups() {
	section("E-SP1", "speedup sweeps on the simulated machine")
	cases := []struct {
		name  string
		src   string
		setup func(int) func(h *interpHeap, env map[string]interp.Value)
	}{}
	_ = cases
	run := func(name, src string, setup runtime.Setup, roots ...string) {
		opts := core.DefaultOptions()
		opts.Analysis.ExternalRoots = roots
		pipe, err := core.Build(src, opts)
		if err != nil {
			log.Fatal(err)
		}
		sp, err := pipe.Speedup(interp.Config{}, setup, []int{1, 2, 4, 8, 16, 64, 0})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n%s", name, sp.String())
	}
	for _, depth := range []int{8, 12, 16} {
		run(fmt.Sprintf("treeadd depth=%d", depth), progs.TreeAdd, progs.BalancedTreeSetup(depth), "root")
	}
	run("treereverse depth=12", progs.TreeReverse, progs.BalancedTreeSetup(12), "root")
	run("treesum depth=12 (read-only ×2)", progs.TreeSum, progs.BalancedTreeSetup(12), "root")
	run("listinc n=4096 (negative control)", progs.ListIncrement, progs.ListSetup(4096), "cur")
}

type interpHeap = struct{}

// ablations is E-AB1/E-AB2.
func ablations() {
	section("E-AB1", "ablation: §5.2 read-only refinement")
	for _, useRO := range []bool{true, false} {
		opts := core.DefaultOptions()
		opts.Analysis.ExternalRoots = []string{"root"}
		opts.Par = par.Options{FuseBasic: true, FuseCalls: true, FuseSequences: true, UseReadOnly: useRO}
		pipe, err := core.Build(progs.TreeSum, opts)
		if err != nil {
			log.Fatal(err)
		}
		sp, err := pipe.Speedup(interp.Config{}, progs.BalancedTreeSetup(10), []int{8, 0})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("readonly=%-5v parallel statements=%d  speedup(P=8)=%.2f  T∞=%d (available parallelism %.0f)\n",
			useRO, pipe.Par.Stats.ParStatements, sp.SpeedupAt(0), sp.Span,
			float64(sp.Work)/float64(sp.Span))
	}

	section("E-AB2", "ablation: widening bounds")
	// The workload walks the left spine in a loop (root→cur = {S?, L+?})
	// and then updates cur's value next to an update in the right subtree.
	// Direction-preserving widening keeps the two independent; harsh
	// limits collapse L+ to D+ and the fusion is lost.
	const widenSrc = `
program widen
procedure main()
  root, cur, r: handle
begin
  cur := root;
  while cur.left <> nil do
    cur := cur.left;
  r := root.right;
  cur.value := 1;
  if r <> nil then r.value := 2
end;
`
	for _, lim := range []path.Limits{
		{MaxExact: 1, MaxSegs: 1, MaxPaths: 1},
		{MaxExact: 4, MaxSegs: 4, MaxPaths: 4},
		path.DefaultLimits,
	} {
		opts := core.DefaultOptions()
		opts.Analysis.Limits = lim
		opts.Analysis.ExternalRoots = []string{"root"}
		pipe, err := core.Build(widenSrc, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("limits{exact=%d segs=%d paths=%d}: parallel statements=%d\n",
			lim.MaxExact, lim.MaxSegs, lim.MaxPaths, pipe.Par.Stats.ParStatements)
	}
}
