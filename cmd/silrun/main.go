// Command silrun executes a SIL program: sequentially, with deterministic
// parallel semantics after auto-parallelization, or on real goroutines.
//
// Usage:
//
//	silrun [-mode seq|par|conc] [-tree N] [-list N] [-races] [-procs "1,2,4"] file.sil
//
// -tree/-list bind main's root/cur to a generated workload. With -procs,
// the parallelized program's trace is scheduled on the simulated machine.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/progs"
	"repro/internal/runtime"
)

func main() {
	log.SetFlags(0)
	mode := flag.String("mode", "par", "execution mode: seq, par (deterministic), conc (goroutines)")
	tree := flag.Int("tree", 0, "bind main's root to a balanced tree of this depth")
	list := flag.Int("list", 0, "bind main's cur to a list of this length")
	races := flag.Bool("races", false, "enable the dynamic race detector")
	procsFlag := flag.String("procs", "", "comma-separated processor counts for the simulated machine (0 = unbounded)")
	flag.Parse()

	src := progs.AddAndReverse
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
	}
	pipe, err := core.Build(src, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	var setup runtime.Setup
	switch {
	case *tree > 0:
		setup = progs.BalancedTreeSetup(*tree)
	case *list > 0:
		setup = progs.ListSetup(*list)
	}
	cfg := interp.Config{DetectRaces: *races}
	var res *interp.Result
	switch *mode {
	case "seq":
		res, err = pipe.RunSequential(cfg, setup)
	case "par":
		res, err = pipe.RunParallel(cfg, setup)
	case "conc":
		cfg.Concurrent = true
		cfg.DetectRaces = false
		res, err = pipe.RunParallel(cfg, setup)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steps=%d work=%d span=%d heap=%d nodes\n", res.Steps, res.Work, res.Span, res.Heap.Len())
	names := make([]string, 0, len(res.Env))
	for n := range res.Env {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := res.Env[n]
		if v.IsHandle && !v.Node.IsNil() {
			fmt.Printf("%s -> %s (%d reachable nodes)\n", n, res.Heap.Classify(v.Node), len(res.Heap.Reachable(v.Node)))
		} else {
			fmt.Printf("%s = %s\n", n, v)
		}
	}
	if *races {
		if len(res.Races) == 0 {
			fmt.Println("races: none")
		} else {
			fmt.Printf("races:\n%s\n", interp.RacesString(res.Races))
		}
	}
	if *procsFlag != "" {
		var procs []int
		for _, s := range strings.Split(*procsFlag, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("bad -procs: %v", err)
			}
			procs = append(procs, p)
		}
		sp, err := pipe.Speedup(interp.Config{}, setup, procs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(sp.String())
	}
}
