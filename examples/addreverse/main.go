// Command addreverse walks through the paper's worked example in detail:
// it prints the path matrices at program points A (in main) and B (inside
// add_n, before the recursive calls — the matrix with the symbolic handles
// h* and h**), shows the read-only/update argument classification, and
// sweeps tree depth to show how the detected parallelism scales.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/progs"
	"repro/internal/sil/ast"
)

func findCall(prog *ast.Program, proc, callee string, n int) ast.Stmt {
	var out ast.Stmt
	count := 0
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ast.Par:
			for _, st := range s.Branches {
				walk(st)
			}
		case *ast.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.While:
			walk(s.Body)
		case *ast.CallStmt:
			if s.Name == callee {
				if count == n {
					out = s
				}
				count++
			}
		}
	}
	walk(prog.Proc(proc).Body)
	return out
}

func main() {
	pipe, err := core.Build(progs.AddAndReverse, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== path matrix pA (before add_n(lside, 1) in main) ===")
	fmt.Println(pipe.MatrixBefore(findCall(pipe.Prog, "main", "add_n", 0)))

	fmt.Println("\n=== path matrix pB (before the recursive add_n(l, n)) ===")
	fmt.Println(pipe.MatrixBefore(findCall(pipe.Prog, "add_n", "add_n", 0)))

	fmt.Println("\n=== path matrix pC (before the recursive reverse(l)) ===")
	fmt.Println(pipe.MatrixBefore(findCall(pipe.Prog, "reverse", "reverse", 0)))

	fmt.Println("\n=== mod-ref classification (§5.2) ===")
	for _, name := range []string{"build", "add_n", "reverse"} {
		sum := pipe.Info.Summaries[name]
		fmt.Printf("%-8s update=%v links=%v attaches=%v\n",
			name, sum.UpdateParams, sum.LinkParams, sum.AttachesParams)
	}

	fmt.Println("\n=== parallelized (Figure 8) ===")
	fmt.Println(pipe.ParallelText())

	// Depth sweep on the parameterized treeadd + treereverse kernels.
	fmt.Println("=== speedup sweep: add_n over balanced trees ===")
	topts := core.DefaultOptions()
	topts.Analysis.ExternalRoots = []string{"root"}
	tp, err := core.Build(progs.TreeAdd, topts)
	if err != nil {
		log.Fatal(err)
	}
	for _, depth := range []int{6, 10, 14} {
		sp, err := tp.Speedup(interp.Config{}, progs.BalancedTreeSetup(depth), []int{1, 2, 4, 8, 16, 0})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("depth=%d\n%s", depth, sp.String())
	}

	fmt.Println("=== speedup sweep: reverse over balanced trees ===")
	rp, err := core.Build(progs.TreeReverse, topts)
	if err != nil {
		log.Fatal(err)
	}
	for _, depth := range []int{6, 10, 14} {
		sp, err := rp.Speedup(interp.Config{}, progs.BalancedTreeSetup(depth), []int{1, 2, 4, 8, 16, 0})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("depth=%d\n%s", depth, sp.String())
	}
}
