// Command bitonic reproduces the paper's §6 case study: the adaptive
// bitonic sort of Bilardi & Nicolau [BN86] works on bitonic trees with
// conditional subtree swaps; the corpus kernel bimerge has the same
// access/update pattern. The analysis proves the two recursive calls
// independent despite the structure swap, and the simulated machine shows
// the resulting parallelism.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/progs"
)

func main() {
	opts := core.DefaultOptions()
	opts.Analysis.ExternalRoots = []string{"root"}
	pipe, err := core.Build(progs.BitonicMerge, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== static analysis report ===")
	fmt.Print(pipe.Report())

	fmt.Println("\n=== parallelized bitonic merge ===")
	fmt.Println(pipe.ParallelText())

	rep, err := pipe.Verify(interp.Config{}, progs.BitonicTreeSetup(8))
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== verification: parallel run equals sequential, no races ===")

	fmt.Println("\n=== speedup sweep over bitonic trees ===")
	for _, depth := range []int{6, 10, 14} {
		sp, err := pipe.Speedup(interp.Config{}, progs.BitonicTreeSetup(depth), []int{1, 2, 4, 8, 16, 0})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("depth=%d\n%s", depth, sp.String())
	}
}
