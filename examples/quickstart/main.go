// Command quickstart is the five-minute tour: compile the paper's Figure 7
// program, print the structure verdict and the parallelized Figure 8 text,
// verify sequential/parallel equivalence, and measure speedup on the
// simulated multiprocessor.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/progs"
)

func main() {
	pipe, err := core.Build(progs.AddAndReverse, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== static analysis report ===")
	fmt.Print(pipe.Report())

	fmt.Println("\n=== parallelized program (Figure 8) ===")
	fmt.Println(pipe.ParallelText())

	rep, err := pipe.Verify(interp.Config{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== verification ===")
	fmt.Printf("sequential and parallel runs agree; no dynamic races\n")
	fmt.Printf("work %d, parallel span %d\n", rep.ParWork, rep.ParSpan)

	sp, err := pipe.Speedup(interp.Config{}, nil, []int{1, 2, 4, 8, 16, 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== simulated machine ===")
	fmt.Print(sp.String())
}
