// Command racedebug demonstrates the paper's §1 debugging application: a
// hand-written parallel program whose branches interfere. The static
// sequence analysis (§5.3) flags the interference, and the dynamic race
// detector pinpoints the conflicting location at run time.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/interfere"
	"repro/internal/interp"
	"repro/internal/sil/ast"
)

// buggy is a user-written parallel program: the second branch reads
// root.left (on its way to the value) while the first branch overwrites
// that very edge — a bug the compiler should reject and the debugger
// should localize.
const buggy = `
program buggy
procedure main()
  root, l, r, grab: handle; x: int
begin
  root := new();
  l := new();
  r := new();
  root.left := l;
  root.right := r;
  root.left := r || begin grab := root.left; x := grab.value end
end;
`

func main() {
	pipe, err := core.Build(buggy, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Locate the user's parallel statement and check its branches with
	// the §5.3 sequence analysis.
	var parStmt *ast.Par
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ast.Par:
			parStmt = s
		}
	}
	walk(pipe.Prog.Proc("main").Body)
	if parStmt == nil {
		log.Fatal("no parallel statement found")
	}
	p0 := pipe.Info.Before[parStmt]
	interferes, err := interfere.SequencesInterfere(
		pipe.Info, "main", p0,
		parStmt.Branches[:1], parStmt.Branches[1:], true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== static check of the user's || statement (§5.3) ===")
	if interferes {
		fmt.Println("REJECTED: the parallel branches may interfere")
	} else {
		fmt.Println("accepted: branches proven independent")
	}

	// The dynamic detector confirms and localizes.
	res, err := pipe.RunSequential(interp.Config{DetectRaces: true}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== dynamic race report ===")
	if len(res.Races) == 0 {
		fmt.Println("no races observed")
	} else {
		fmt.Println(interp.RacesString(res.Races))
	}
}
