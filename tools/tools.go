//go:build tools

// Package tools records the repo's tool dependencies as blank imports so
// `go mod tidy` keeps them in go.mod. The "tools" build tag is never set,
// so nothing here is ever compiled into a binary.
package tools

import (
	_ "honnef.co/go/tools/cmd/staticcheck"
)
