// Nested tool-dependency module: pins the staticcheck release CI runs
// without adding any dependency to the main (zero-dependency) module.
// The go tool skips directories containing their own go.mod, so this
// module is invisible to `go build ./...` / `go test ./...` at the root.
//
// honnef.co/go/tools v0.6.1 is the module version of staticcheck release
// 2025.1.1. To bump staticcheck, change the version here; CI's lint job
// runs `go mod tidy && go install` inside this directory.
module repro/tools

go 1.24

require honnef.co/go/tools v0.6.1
